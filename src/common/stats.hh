/**
 * @file
 * Lightweight statistics package: named scalar counters, averages,
 * distributions and derived formulas, grouped per component.
 *
 * Components own a StatGroup; stats register themselves with the group
 * at construction, so `dump()` can print every stat without manual
 * bookkeeping. Modelled on (a tiny fraction of) gem5's stats package.
 */

#ifndef MTRAP_COMMON_STATS_HH
#define MTRAP_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace mtrap
{

class StatGroup;

/** Base class for all statistics: a name, description and reset hook. */
class StatBase
{
  public:
    StatBase(StatGroup *group, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Render the current value(s) as a printable string. */
    virtual std::string format() const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonic (well, signed-adjustable) event counter. */
class Counter : public StatBase
{
  public:
    Counter(StatGroup *group, std::string name, std::string desc)
        : StatBase(group, std::move(name), std::move(desc)) {}

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t v) { value_ += v; return *this; }
    std::uint64_t value() const { return value_; }

    std::string format() const override;
    void reset() override { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running average of samples (mean latency, occupancy, ...). */
class Average : public StatBase
{
  public:
    Average(StatGroup *group, std::string name, std::string desc)
        : StatBase(group, std::move(name), std::move(desc)) {}

    void sample(double v) { sum_ += v; ++count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }

    std::string format() const override;
    void reset() override { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [0, max) plus an overflow bucket. */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup *group, std::string name, std::string desc,
              std::uint64_t bucket_width, unsigned num_buckets);

    void sample(std::uint64_t v);
    std::uint64_t bucketCount(unsigned i) const { return buckets_.at(i); }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t samples() const { return samples_; }

    std::string format() const override;
    void reset() override;

  private:
    std::uint64_t bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
};

/** Derived value computed on demand from other stats. */
class Formula : public StatBase
{
  public:
    Formula(StatGroup *group, std::string name, std::string desc,
            std::function<double()> fn)
        : StatBase(group, std::move(name), std::move(desc)),
          fn_(std::move(fn)) {}

    double value() const { return fn_ ? fn_() : 0.0; }
    std::string format() const override;
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of statistics belonging to one component.
 * Groups can nest; dump() walks the subtree in registration order.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    /** Fully qualified dotted name, e.g. "system.core0.l1d". */
    std::string path() const;

    /** Called by StatBase's constructor. */
    void registerStat(StatBase *s) { stats_.push_back(s); }

    /** Print every stat in this group and its children. */
    void dump(std::ostream &os) const;

    /** Reset every stat in this group and its children. */
    void resetAll();

    /** Find a stat by local name (nullptr if absent); for tests. */
    const StatBase *find(const std::string &name) const;

    /** Visit every stat in this subtree with its fully qualified path
     *  (serialisation, custom reporting). */
    void visit(const std::function<void(const std::string &path,
                                        const StatBase &stat)> &fn) const;

  private:
    std::string name_;
    StatGroup *parent_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace mtrap

#endif // MTRAP_COMMON_STATS_HH

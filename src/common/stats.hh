/**
 * @file
 * Zero-allocation statistics package: interned per-component-type stat
 * schemas plus dense per-instance telemetry sheets.
 *
 * The original design (a tiny fraction of gem5's stats package) gave
 * every stat its own heap-allocated name/description strings and every
 * group a dotted-path string — which made stat registration the last
 * remaining System-construction wall for the paper's thousands of
 * short-lived sweep systems. This redesign splits the package in two:
 *
 *  - A process-wide StatSchema per component *type* (Cache, Core, ...):
 *    names, descriptions, kinds and sheet offsets are registered once,
 *    at first use, and shared by every instance. Leaf names/descs stay
 *    the caller's string literals; runtime group names ("core0",
 *    "l1d3") are interned once in the process-wide StatNames table.
 *
 *  - A per-instance StatSheet of dense POD slots embedded inline in
 *    each StatGroup: constructing a component's stats is a memset, and
 *    resetAll() is a memset. No heap allocation, no string formatting.
 *
 * Counter/Average/Histogram/Formula are thin typed handles pointing
 * into the sheet; component code (`++hits`, `latency.sample(x)`) is
 * unchanged. Full dotted names ("system.core0.l1d.hits") are
 * materialized lazily, only at dump/visit time, from the interned
 * prefix chain.
 *
 * StatNames::constructions() counts every stat-name std::string the
 * package ever builds (interner insertions); a warm process constructs
 * zero of them per System, which the stats_schema_test locks down.
 */

#ifndef MTRAP_COMMON_STATS_HH
#define MTRAP_COMMON_STATS_HH

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace mtrap
{

class StatGroup;

/** Interned stat-name id (index into the process-wide StatNames table). */
using NameId = std::uint32_t;

/**
 * Process-wide stat-name interner. Interning an already-known name is a
 * shared-lock hash lookup (no allocation); only the first sighting of a
 * name constructs a string. Id 0 is always the empty string.
 */
class StatNames
{
  public:
    static NameId intern(std::string_view s);
    static const std::string &str(NameId id);

    /**
     * Number of stat-name std::strings constructed so far (one per
     * distinct interned name, process lifetime). Flat across warm
     * System construction — the acceptance counter for the
     * zero-allocation claim.
     */
    static std::uint64_t constructions();
};

/**
 * Value-type interned name. Cheap to copy and compare; converting from
 * a string is a hash lookup (allocation only on first sighting).
 * Component params carry these instead of std::string so configuring a
 * system constructs no name strings after warm-up.
 */
class StatName
{
  public:
    StatName() = default; // id 0 == ""
    StatName(const char *s) : id_(StatNames::intern(s)) {}
    StatName(const std::string &s) : id_(StatNames::intern(s)) {}

    /** "<prefix><n>", e.g. indexed("l1d", 3) == "l1d3"; formatted in a
     *  stack buffer, so warm interning constructs nothing. */
    static StatName indexed(const char *prefix, unsigned n);

    /** "<this><suffix>", e.g. "fcache_d" + "_filter"; stack-buffered. */
    StatName withSuffix(const char *suffix) const;

    NameId id() const { return id_; }
    const std::string &str() const { return StatNames::str(id_); }
    const char *c_str() const { return str().c_str(); }
    bool empty() const { return id_ == 0; }

  private:
    NameId id_ = 0;
};

enum class StatKind : std::uint8_t { Counter, Average, Histogram, Formula };

/** Derived-stat evaluator: a pure function of its per-instance context
 *  (usually the owning component). Must be a plain function pointer so
 *  the schema can share it across instances. */
using FormulaFn = double (*)(const void *ctx);

/** One stat's interned metadata: shared by every instance of the
 *  component type that registered it. */
struct StatDef
{
    const char *name = nullptr; ///< leaf name (caller's string literal)
    const char *desc = nullptr;
    StatKind kind = StatKind::Counter;
    std::uint32_t offset = 0;   ///< first data word in the sheet
    std::uint32_t words = 0;    ///< data words occupied
    std::uint32_t ctxIndex = 0; ///< formula context slot
    std::uint32_t numBuckets = 0;
    std::uint64_t bucketWidth = 0;
    FormulaFn formula = nullptr;
};

/**
 * Interned stat layout of one component type. Define one per type
 * (usually a function-local static in the component's .cc) and pass it
 * to every instance's StatGroup. The first instance registers the defs
 * (taking a mutex); later instances take the lock-free fast path and
 * just verify position/kind. Registration is positional: every
 * instance must bind the same stats in the same order, which member
 * initialization order guarantees.
 */
class StatSchema
{
  public:
    explicit StatSchema(const char *component) : component_(component) {}

    StatSchema(const StatSchema &) = delete;
    StatSchema &operator=(const StatSchema &) = delete;

    /** Defs registered so far (acquire: defs_[0..size) are readable). */
    unsigned size() const
    {
        return count_.load(std::memory_order_acquire);
    }
    const StatDef &def(unsigned i) const { return defs_[i]; }

    /** Total data words a full sheet needs. */
    std::uint32_t dataWords() const
    {
        return dataWords_.load(std::memory_order_acquire);
    }

    /** Register-or-verify the def at position `pos` (see class docs). */
    const StatDef &bind(unsigned pos, const char *name, const char *desc,
                        StatKind kind, std::uint32_t words,
                        FormulaFn fn = nullptr,
                        std::uint64_t bucket_width = 0,
                        std::uint32_t num_buckets = 0);

    static constexpr unsigned kMaxDefs = 24;

  private:
    const char *component_;
    std::mutex mu_;
    std::atomic<std::uint32_t> count_{0};
    std::atomic<std::uint32_t> dataWords_{0};
    std::uint32_t ctxCount_ = 0; ///< guarded by mu_
    StatDef defs_[kMaxDefs];
};

/**
 * Read-only view of one stat of one group (dump/visit/find). Values
 * are formatted on demand; nothing is owned.
 */
class StatView
{
  public:
    StatView() = default;
    StatView(const StatDef *def, const StatGroup *group)
        : def_(def), group_(group) {}

    explicit operator bool() const { return def_ != nullptr; }

    const char *name() const { return def_->name; }
    const char *desc() const { return def_->desc; }
    StatKind kind() const { return def_->kind; }

    /** Numeric value: count, mean, or formula result. */
    double number() const;

    /** Render the current value(s) exactly as the legacy package did. */
    std::string format() const;

    /**
     * Direct pointer to the stat's data words in the live sheet (stable
     * for the group's lifetime), or nullptr for formulas, which own no
     * words. Interval samplers (trace/stats_series.hh) keep these
     * pointers so each sample is plain loads — no name lookups.
     */
    const std::uint64_t *words() const;

  private:
    const StatDef *def_ = nullptr;
    const StatGroup *group_ = nullptr;
};

/**
 * A named collection of statistics belonging to one component
 * instance: an interned name, a schema pointer, and the instance's
 * telemetry sheet, stored inline (construction and reset are memsets —
 * no heap traffic). Groups nest through an intrusive sibling list, so
 * attaching a child allocates nothing either.
 */
class StatGroup
{
  public:
    /** Component group over a shared per-type schema. */
    StatGroup(StatSchema &schema, StatName name, StatGroup *parent);

    /**
     * Ad-hoc group (tests, one-off rigs): owns a private schema,
     * allocated lazily when the first stat binds. Groups that only act
     * as parents (System's root) never allocate.
     */
    explicit StatGroup(StatName name, StatGroup *parent = nullptr);

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_.str(); }

    /** Fully qualified dotted name, e.g. "system.core0.l1d".
     *  Materialized on demand — never during construction. */
    std::string path() const;

    /** Print every stat in this group and its children. */
    void dump(std::ostream &os) const;

    /** Reset every stat in this group and its children (memset). */
    void resetAll();

    /** Find a stat by local name (invalid view if absent); for tests. */
    StatView find(std::string_view name) const;

    /** Visit every stat in this subtree with its fully qualified path
     *  (serialisation, custom reporting). Paths are built lazily here,
     *  at visit time. */
    void visit(const std::function<void(const std::string &path,
                                        const StatView &stat)> &fn) const;

    /**
     * Pre-order walk over this group and every descendant, in
     * registration order — the deterministic traversal the snapshot
     * layer pairs with sheet() to memcpy all telemetry in one pass.
     */
    template <typename Fn>
    void forEachGroup(Fn &&fn)
    {
        fn(*this);
        for (StatGroup *c = firstChild_; c; c = c->nextSibling_)
            c->forEachGroup(fn);
    }

    template <typename Fn>
    void forEachGroup(Fn &&fn) const
    {
        fn(*this);
        for (const StatGroup *c = firstChild_; c; c = c->nextSibling_)
            c->forEachGroup(fn);
    }

    /** The raw telemetry sheet (kSheetWords words): checkpoint access. */
    std::uint64_t *sheet() { return words_; }
    const std::uint64_t *sheet() const { return words_; }

    // --- binding API (used by the typed handles below) -------------------
    std::uint64_t *bindWords(const char *name, const char *desc,
                             StatKind kind, std::uint32_t words,
                             std::uint64_t bucket_width = 0,
                             std::uint32_t num_buckets = 0);
    void bindFormula(const char *name, const char *desc, FormulaFn fn,
                     const void *ctx);

    /** Inline sheet capacity: data words / formula contexts per group.
     *  Generous for every component schema; binds past it are fatal. */
    static constexpr unsigned kSheetWords = 64;
    static constexpr unsigned kCtxSlots = 6;

  private:
    friend class StatView;

    StatSchema &ensureSchema();
    void dumpImpl(std::ostream &os, std::string &prefix) const;
    void visitImpl(const std::function<void(const std::string &,
                                            const StatView &)> &fn,
                   std::string &prefix) const;

    StatName name_;
    StatGroup *parent_ = nullptr;
    StatSchema *schema_ = nullptr;
    /** Ad-hoc groups only; component groups share a static schema. */
    std::unique_ptr<StatSchema> ownedSchema_;
    /** Intrusive child list (registration order == dump order). */
    StatGroup *firstChild_ = nullptr;
    StatGroup *lastChild_ = nullptr;
    StatGroup *nextSibling_ = nullptr;
    /** Next bind position (instance-local registration cursor). */
    unsigned cursor_ = 0;

    /** The telemetry sheet: dense POD slots, zero-initialised. */
    std::uint64_t words_[kSheetWords] = {};
    /** Per-instance formula contexts (survive resetAll). */
    const void *ctx_[kCtxSlots] = {};
};

/** Load/store a double held in a sheet word (defined-behaviour type
 *  punning; compiles to a plain move). */
inline double
statWordAsDouble(const std::uint64_t *w)
{
    double d;
    std::memcpy(&d, w, sizeof(d));
    return d;
}

inline void
statWordFromDouble(std::uint64_t *w, double d)
{
    std::memcpy(w, &d, sizeof(d));
}

/** Monotonic (well, signed-adjustable) event counter: one sheet word. */
class Counter
{
  public:
    Counter(StatGroup *group, const char *name, const char *desc)
        : v_(group->bindWords(name, desc, StatKind::Counter, 1)) {}

    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    Counter &operator++() { ++*v_; return *this; }
    Counter &operator+=(std::uint64_t v) { *v_ += v; return *this; }
    std::uint64_t value() const { return *v_; }
    void reset() { *v_ = 0; }

  private:
    std::uint64_t *v_;
};

/** Running average of samples: two sheet words (sum, count). */
class Average
{
  public:
    Average(StatGroup *group, const char *name, const char *desc)
        : w_(group->bindWords(name, desc, StatKind::Average, 2)) {}

    Average(const Average &) = delete;
    Average &operator=(const Average &) = delete;

    void sample(double v)
    {
        statWordFromDouble(w_, statWordAsDouble(w_) + v);
        ++w_[1];
    }
    double mean() const
    {
        return w_[1] ? statWordAsDouble(w_)
                           / static_cast<double>(w_[1])
                     : 0.0;
    }
    std::uint64_t count() const { return w_[1]; }
    void reset() { w_[0] = 0; w_[1] = 0; }

  private:
    std::uint64_t *w_;
};

/** Fixed-bucket histogram over [0, max) plus an overflow bucket:
 *  [samples][overflow][buckets...] sheet words. */
class Histogram
{
  public:
    Histogram(StatGroup *group, const char *name, const char *desc,
              std::uint64_t bucket_width, unsigned num_buckets);

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void sample(std::uint64_t v)
    {
        ++w_[0];
        const std::uint64_t idx = v / bucketWidth_;
        if (idx >= numBuckets_)
            ++w_[1];
        else
            ++w_[2 + idx];
    }
    std::uint64_t bucketCount(unsigned i) const;
    std::uint64_t overflow() const { return w_[1]; }
    std::uint64_t samples() const { return w_[0]; }
    void reset() { std::memset(w_, 0, (2 + numBuckets_) * 8); }

  private:
    std::uint64_t *w_;
    std::uint64_t bucketWidth_;
    std::uint32_t numBuckets_;
};

/** Derived value computed on demand from other stats. The evaluator is
 *  a shared function pointer (lives in the schema); only the context
 *  pointer is per-instance. */
class Formula
{
  public:
    Formula(StatGroup *group, const char *name, const char *desc,
            FormulaFn fn, const void *ctx)
        : fn_(fn), ctx_(ctx)
    {
        group->bindFormula(name, desc, fn, ctx);
    }

    Formula(const Formula &) = delete;
    Formula &operator=(const Formula &) = delete;

    double value() const { return fn_ ? fn_(ctx_) : 0.0; }
    void reset() {}

  private:
    FormulaFn fn_;
    const void *ctx_;
};

} // namespace mtrap

#endif // MTRAP_COMMON_STATS_HH

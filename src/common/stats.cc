#include "common/stats.hh"

#include <cstdio>

#include "common/log.hh"

namespace mtrap
{

StatBase::StatBase(StatGroup *group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (group)
        group->registerStat(this);
}

std::string
Counter::format() const
{
    return strfmt("%llu", static_cast<unsigned long long>(value_));
}

std::string
Average::format() const
{
    return strfmt("%.4f (n=%llu)", mean(),
                  static_cast<unsigned long long>(count_));
}

Histogram::Histogram(StatGroup *group, std::string name, std::string desc,
                     std::uint64_t bucket_width, unsigned num_buckets)
    : StatBase(group, std::move(name), std::move(desc)),
      bucketWidth_(bucket_width), buckets_(num_buckets, 0)
{
    if (bucket_width == 0 || num_buckets == 0)
        fatal("histogram %s: zero bucket width or count", this->name().c_str());
}

void
Histogram::sample(std::uint64_t v)
{
    ++samples_;
    std::uint64_t idx = v / bucketWidth_;
    if (idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[idx];
}

std::string
Histogram::format() const
{
    std::string out = strfmt("n=%llu [",
                             static_cast<unsigned long long>(samples_));
    for (size_t i = 0; i < buckets_.size(); ++i) {
        out += strfmt("%llu",
                      static_cast<unsigned long long>(buckets_[i]));
        if (i + 1 < buckets_.size())
            out += " ";
    }
    out += strfmt("] ovf=%llu", static_cast<unsigned long long>(overflow_));
    return out;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    overflow_ = 0;
    samples_ = 0;
}

std::string
Formula::format() const
{
    return strfmt("%.6f", value());
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->children_.push_back(this);
}

std::string
StatGroup::path() const
{
    if (!parent_)
        return name_;
    return parent_->path() + "." + name_;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const StatBase *s : stats_) {
        os << path() << "." << s->name() << " = " << s->format()
           << "   # " << s->desc() << "\n";
    }
    for (const StatGroup *c : children_)
        c->dump(os);
}

void
StatGroup::resetAll()
{
    for (StatBase *s : stats_)
        s->reset();
    for (StatGroup *c : children_)
        c->resetAll();
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    for (const StatBase *s : stats_)
        if (s->name() == name)
            return s;
    return nullptr;
}

void
StatGroup::visit(const std::function<void(const std::string &,
                                          const StatBase &)> &fn) const
{
    const std::string prefix = path();
    for (const StatBase *s : stats_)
        fn(prefix + "." + s->name(), *s);
    for (const StatGroup *c : children_)
        c->visit(fn);
}

} // namespace mtrap

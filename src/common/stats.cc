#include "common/stats.hh"

#include <cstdio>
#include <deque>
#include <shared_mutex>
#include <unordered_map>

#include "common/log.hh"

namespace mtrap
{

// --------------------------------------------------------------------------
// StatNames
// --------------------------------------------------------------------------

namespace
{

/** Interner state; intentionally leaked (late-destroyed Systems may
 *  still format names during teardown). */
struct NameTable
{
    std::shared_mutex mu;
    /** Deque: stable addresses, so ids can hand out string refs. */
    std::deque<std::string> strings;
    /** Views point into `strings` entries (stable). */
    std::unordered_map<std::string_view, NameId> ids;
    std::atomic<std::uint64_t> constructions{0};

    NameTable()
    {
        strings.emplace_back(); // id 0 == ""
        ids.emplace(std::string_view(strings.back()), 0);
    }
};

NameTable &
nameTable()
{
    static NameTable *t = new NameTable();
    return *t;
}

} // namespace

NameId
StatNames::intern(std::string_view s)
{
    NameTable &t = nameTable();
    {
        std::shared_lock lk(t.mu);
        auto it = t.ids.find(s);
        if (it != t.ids.end())
            return it->second;
    }
    std::unique_lock lk(t.mu);
    auto it = t.ids.find(s);
    if (it != t.ids.end())
        return it->second;
    const NameId id = static_cast<NameId>(t.strings.size());
    t.strings.emplace_back(s);
    t.ids.emplace(std::string_view(t.strings.back()), id);
    t.constructions.fetch_add(1, std::memory_order_relaxed);
    return id;
}

const std::string &
StatNames::str(NameId id)
{
    NameTable &t = nameTable();
    std::shared_lock lk(t.mu);
    return t.strings.at(id);
}

std::uint64_t
StatNames::constructions()
{
    return nameTable().constructions.load(std::memory_order_relaxed);
}

StatName
StatName::indexed(const char *prefix, unsigned n)
{
    char buf[64];
    const int len = std::snprintf(buf, sizeof(buf), "%s%u", prefix, n);
    if (len < 0 || len >= static_cast<int>(sizeof(buf)))
        fatal("stat name '%s%u' too long", prefix, n);
    StatName out;
    out.id_ = StatNames::intern(std::string_view(buf,
                                                 static_cast<size_t>(len)));
    return out;
}

StatName
StatName::withSuffix(const char *suffix) const
{
    const std::string &base = str();
    char buf[96];
    const int len = std::snprintf(buf, sizeof(buf), "%s%s", base.c_str(),
                                  suffix);
    if (len < 0 || len >= static_cast<int>(sizeof(buf)))
        fatal("stat name '%s%s' too long", base.c_str(), suffix);
    StatName out;
    out.id_ = StatNames::intern(std::string_view(buf,
                                                 static_cast<size_t>(len)));
    return out;
}

// --------------------------------------------------------------------------
// StatSchema
// --------------------------------------------------------------------------

const StatDef &
StatSchema::bind(unsigned pos, const char *name, const char *desc,
                 StatKind kind, std::uint32_t words, FormulaFn fn,
                 std::uint64_t bucket_width, std::uint32_t num_buckets)
{
    auto verify = [&](const StatDef &d) -> const StatDef & {
        if (d.kind != kind || std::strcmp(d.name, name) != 0 ||
            d.words != words || d.bucketWidth != bucket_width ||
            d.numBuckets != num_buckets || d.formula != fn)
            fatal("stat schema %s: slot %u bound as '%s' but registered "
                  "as '%s' — every instance of a component type must "
                  "register the same stats in the same order",
                  component_, pos, name, d.name);
        return d;
    };

    if (pos < count_.load(std::memory_order_acquire))
        return verify(defs_[pos]);

    std::lock_guard<std::mutex> lk(mu_);
    if (pos < count_.load(std::memory_order_relaxed))
        return verify(defs_[pos]);
    if (pos != count_.load(std::memory_order_relaxed))
        panic("stat schema %s: non-sequential bind of slot %u",
              component_, pos);
    if (pos >= kMaxDefs)
        fatal("stat schema %s: more than %u stats; raise "
              "StatSchema::kMaxDefs", component_, kMaxDefs);

    StatDef &d = defs_[pos];
    d.name = name;
    d.desc = desc;
    d.kind = kind;
    d.words = words;
    d.offset = dataWords_.load(std::memory_order_relaxed);
    d.bucketWidth = bucket_width;
    d.numBuckets = num_buckets;
    d.formula = fn;
    d.ctxIndex = (kind == StatKind::Formula) ? ctxCount_++ : 0;
    dataWords_.store(d.offset + words, std::memory_order_release);
    count_.store(pos + 1, std::memory_order_release);
    return d;
}

// --------------------------------------------------------------------------
// StatView
// --------------------------------------------------------------------------

double
StatView::number() const
{
    const std::uint64_t *w = &group_->words_[def_->offset];
    switch (def_->kind) {
      case StatKind::Counter:
        return static_cast<double>(w[0]);
      case StatKind::Average:
        return w[1] ? statWordAsDouble(w) / static_cast<double>(w[1])
                    : 0.0;
      case StatKind::Histogram:
        return static_cast<double>(w[0]); // sample count
      case StatKind::Formula:
        return def_->formula
                   ? def_->formula(group_->ctx_[def_->ctxIndex])
                   : 0.0;
    }
    return 0.0;
}

const std::uint64_t *
StatView::words() const
{
    if (def_->kind == StatKind::Formula)
        return nullptr;
    return &group_->words_[def_->offset];
}

std::string
StatView::format() const
{
    const std::uint64_t *w = &group_->words_[def_->offset];
    switch (def_->kind) {
      case StatKind::Counter:
        return strfmt("%llu", static_cast<unsigned long long>(w[0]));
      case StatKind::Average:
        return strfmt("%.4f (n=%llu)",
                      w[1] ? statWordAsDouble(w)
                                 / static_cast<double>(w[1])
                           : 0.0,
                      static_cast<unsigned long long>(w[1]));
      case StatKind::Histogram: {
        std::string out = strfmt("n=%llu [",
                                 static_cast<unsigned long long>(w[0]));
        for (std::uint32_t i = 0; i < def_->numBuckets; ++i) {
            out += strfmt("%llu",
                          static_cast<unsigned long long>(w[2 + i]));
            if (i + 1 < def_->numBuckets)
                out += " ";
        }
        out += strfmt("] ovf=%llu",
                      static_cast<unsigned long long>(w[1]));
        return out;
      }
      case StatKind::Formula:
        return strfmt("%.6f", number());
    }
    return "?";
}

// --------------------------------------------------------------------------
// StatGroup
// --------------------------------------------------------------------------

StatGroup::StatGroup(StatSchema &schema, StatName name, StatGroup *parent)
    : StatGroup(name, parent)
{
    schema_ = &schema;
}

StatGroup::StatGroup(StatName name, StatGroup *parent)
    : name_(name), parent_(parent)
{
    if (parent_) {
        if (parent_->lastChild_)
            parent_->lastChild_->nextSibling_ = this;
        else
            parent_->firstChild_ = this;
        parent_->lastChild_ = this;
    }
}

StatSchema &
StatGroup::ensureSchema()
{
    if (!schema_) {
        ownedSchema_ = std::make_unique<StatSchema>("ad-hoc");
        schema_ = ownedSchema_.get();
    }
    return *schema_;
}

std::uint64_t *
StatGroup::bindWords(const char *name, const char *desc, StatKind kind,
                     std::uint32_t words, std::uint64_t bucket_width,
                     std::uint32_t num_buckets)
{
    const StatDef &d = ensureSchema().bind(cursor_++, name, desc, kind,
                                           words, nullptr, bucket_width,
                                           num_buckets);
    if (d.offset + d.words > kSheetWords)
        fatal("stat group %s: sheet overflow binding '%s' (%u words); "
              "raise StatGroup::kSheetWords",
              name_.c_str(), name, d.offset + d.words);
    return &words_[d.offset];
}

void
StatGroup::bindFormula(const char *name, const char *desc, FormulaFn fn,
                       const void *ctx)
{
    const StatDef &d = ensureSchema().bind(cursor_++, name, desc,
                                           StatKind::Formula, 0, fn);
    if (d.ctxIndex >= kCtxSlots)
        fatal("stat group %s: more than %u formulas; raise "
              "StatGroup::kCtxSlots", name_.c_str(), kCtxSlots);
    ctx_[d.ctxIndex] = ctx;
}

std::string
StatGroup::path() const
{
    if (!parent_)
        return name_.str();
    return parent_->path() + "." + name_.str();
}

void
StatGroup::dump(std::ostream &os) const
{
    std::string prefix = path();
    dumpImpl(os, prefix);
}

void
StatGroup::dumpImpl(std::ostream &os, std::string &prefix) const
{
    for (unsigned i = 0; i < cursor_; ++i) {
        const StatDef &d = schema_->def(i);
        os << prefix << "." << d.name << " = "
           << StatView(&d, this).format() << "   # " << d.desc << "\n";
    }
    for (const StatGroup *c = firstChild_; c; c = c->nextSibling_) {
        const std::size_t len = prefix.size();
        prefix += '.';
        prefix += c->name_.str();
        c->dumpImpl(os, prefix);
        prefix.resize(len);
    }
}

void
StatGroup::resetAll()
{
    std::memset(words_, 0, sizeof(words_));
    for (StatGroup *c = firstChild_; c; c = c->nextSibling_)
        c->resetAll();
}

StatView
StatGroup::find(std::string_view name) const
{
    for (unsigned i = 0; i < cursor_; ++i) {
        const StatDef &d = schema_->def(i);
        if (name == d.name)
            return StatView(&d, this);
    }
    return StatView();
}

void
StatGroup::visit(const std::function<void(const std::string &,
                                          const StatView &)> &fn) const
{
    std::string prefix = path();
    visitImpl(fn, prefix);
}

void
StatGroup::visitImpl(const std::function<void(const std::string &,
                                              const StatView &)> &fn,
                     std::string &prefix) const
{
    for (unsigned i = 0; i < cursor_; ++i) {
        const StatDef &d = schema_->def(i);
        fn(prefix + "." + d.name, StatView(&d, this));
    }
    for (const StatGroup *c = firstChild_; c; c = c->nextSibling_) {
        const std::size_t len = prefix.size();
        prefix += '.';
        prefix += c->name_.str();
        c->visitImpl(fn, prefix);
        prefix.resize(len);
    }
}

// --------------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------------

Histogram::Histogram(StatGroup *group, const char *name, const char *desc,
                     std::uint64_t bucket_width, unsigned num_buckets)
    : w_(group->bindWords(name, desc, StatKind::Histogram,
                          2 + num_buckets, bucket_width, num_buckets)),
      bucketWidth_(bucket_width), numBuckets_(num_buckets)
{
    if (bucket_width == 0 || num_buckets == 0)
        fatal("histogram %s: zero bucket width or count", name);
}

std::uint64_t
Histogram::bucketCount(unsigned i) const
{
    if (i >= numBuckets_)
        panic("histogram: bucket %u out of range (%u buckets)", i,
              numBuckets_);
    return w_[2 + i];
}

} // namespace mtrap

#include "common/checked_io.hh"

#include <atomic>
#include <cstdio>
#include <stdexcept>

#include <unistd.h>

#include "common/log.hh"

namespace mtrap
{

namespace
{

[[noreturn]] void
throwIoError(const std::string &what, const std::string &path,
             const char *stage)
{
    throw std::runtime_error("cannot write " + what + " '" + path + "': "
                             + stage + " failed");
}

} // namespace

void
writeFileChecked(const std::string &path, const std::string &contents,
                 const std::string &what)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        throwIoError(what, path, "open");
    os.write(contents.data(),
             static_cast<std::streamsize>(contents.size()));
    os.flush();
    if (!os)
        throwIoError(what, path, "write");
    os.close();
    if (os.fail())
        throwIoError(what, path, "close");
}

void
writeFileCheckedOrDie(const std::string &path, const std::string &contents,
                      const std::string &what)
{
    try {
        writeFileChecked(path, contents, what);
    } catch (const std::exception &e) {
        fatal("%s", e.what());
    }
}

CheckedOfstream::CheckedOfstream(const std::string &path,
                                 const std::string &what)
    : os_(path, std::ios::binary | std::ios::trunc), path_(path),
      what_(what)
{
    if (!os_)
        throwIoError(what_, path_, "open");
}

CheckedOfstream::~CheckedOfstream()
{
    if (!finished_) {
        // Last-ditch check: a destructor cannot throw, so a failure
        // here is a programming error (caller skipped finish()).
        os_.flush();
        if (!os_)
            panic("unchecked write failure on %s '%s'", what_.c_str(),
                  path_.c_str());
    }
}

void
CheckedOfstream::finish()
{
    finished_ = true;
    os_.flush();
    if (!os_)
        throwIoError(what_, path_, "write");
    os_.close();
    if (os_.fail())
        throwIoError(what_, path_, "close");
}

void
writeFileAtomicChecked(const std::string &path, const std::string &contents,
                       const std::string &what)
{
    // Unique per process+call; concurrent writers never share a temp.
    static std::atomic<std::uint64_t> counter{0};
    const std::string tmp = path + ".tmp." + std::to_string(::getpid())
                            + "." + std::to_string(counter.fetch_add(1));
    writeFileChecked(tmp, contents, what);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throwIoError(what, path, "rename");
    }
}

} // namespace mtrap

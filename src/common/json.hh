/**
 * @file
 * Minimal JSON document model + recursive-descent parser: objects,
 * arrays, strings (the escapes our writers emit), numbers, booleans,
 * null. Originally private to the BENCH.json comparison gate; promoted
 * here once the trace validator became a second reader. Unknown keys
 * parse generically, so schemas can grow fields without breaking old
 * consumers.
 */

#ifndef MTRAP_COMMON_JSON_HH
#define MTRAP_COMMON_JSON_HH

#include <map>
#include <string>
#include <vector>

namespace mtrap
{

/** One parsed JSON value (a tree; the document root owns everything). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *field(const std::string &key) const
    {
        if (kind != Kind::Object)
            return nullptr;
        const auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

/**
 * Parse `text` (an entire document) into `out`. Returns false and sets
 * `err` on malformed input; trailing non-whitespace is an error.
 */
bool parseJson(const std::string &text, JsonValue &out, std::string &err);

/** `v.field(key)` as a number, or `fallback` when absent/mistyped. */
double jsonNumberField(const JsonValue &v, const std::string &key,
                       double fallback);

} // namespace mtrap

#endif // MTRAP_COMMON_JSON_HH

/**
 * @file
 * Checked artifact writing: every file the simulator emits (stats JSON,
 * CSV tables, traces, snapshots) goes through writeFileChecked /
 * CheckedOfstream so a bad path, full disk or failed flush fails loudly
 * instead of silently truncating the artifact.
 */

#ifndef MTRAP_COMMON_CHECKED_IO_HH
#define MTRAP_COMMON_CHECKED_IO_HH

#include <fstream>
#include <string>

namespace mtrap
{

/**
 * Write `contents` to `path`, throwing std::runtime_error with a
 * descriptive message if the file cannot be opened or any write/flush
 * fails. `what` names the artifact for the error message ("stats JSON",
 * "snapshot", ...).
 */
void writeFileChecked(const std::string &path, const std::string &contents,
                      const std::string &what);

/**
 * Like writeFileChecked but exits via fatal() instead of throwing —
 * for tool main()s where an I/O failure is a user-facing error.
 */
void writeFileCheckedOrDie(const std::string &path,
                           const std::string &contents,
                           const std::string &what);

/**
 * Streaming flavour for writers that build output incrementally: wraps
 * std::ofstream and verifies open at construction and stream health at
 * finish(). finish() flushes, closes and throws std::runtime_error on
 * any recorded failure; the destructor calls finish() if it has not run
 * (and terminates on failure, so callers must finish() explicitly on
 * paths that should report errors).
 */
class CheckedOfstream
{
  public:
    CheckedOfstream(const std::string &path, const std::string &what);
    ~CheckedOfstream();

    CheckedOfstream(const CheckedOfstream &) = delete;
    CheckedOfstream &operator=(const CheckedOfstream &) = delete;

    std::ofstream &stream() { return os_; }
    operator std::ostream &() { return os_; }

    /** Flush, close and verify; throws std::runtime_error on failure. */
    void finish();

  private:
    std::ofstream os_;
    std::string path_;
    std::string what_;
    bool finished_ = false;
};

/**
 * Atomically replace `path` with `contents`: write to a unique sibling
 * temp file, fsync-free flush-and-check, then rename over `path`.
 * Concurrent writers of identical content race benignly (rename is
 * atomic); readers never observe a partial file. Throws
 * std::runtime_error on failure.
 */
void writeFileAtomicChecked(const std::string &path,
                            const std::string &contents,
                            const std::string &what);

} // namespace mtrap

#endif // MTRAP_COMMON_CHECKED_IO_HH

#include "common/buffer_pool.hh"

namespace mtrap
{

BufferPool &
BufferPool::instance()
{
    static BufferPool *pool = new BufferPool();
    return *pool;
}

} // namespace mtrap

#include "common/rng.hh"

#include "common/log.hh"

namespace mtrap
{

namespace
{

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/** splitmix64 for seed expansion. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    // xoshiro must not start from the all-zero state.
    if (!(s_[0] | s_[1] | s_[2] | s_[3]))
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below(0)");
    // Rejection-free mapping is fine here: modulo bias is negligible for
    // the small bounds the simulator uses.
    return next() % bound;
}

double
Rng::real()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    if (hi < lo)
        panic("Rng::range: hi < lo");
    return lo + below(hi - lo + 1);
}

std::uint64_t
mixSeeds(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t state = a ^ rotl(b, 23);
    std::uint64_t z = splitmix64(state);
    // A second round decorrelates (a, b) and (b, a).
    state ^= b;
    return z ^ splitmix64(state);
}

} // namespace mtrap

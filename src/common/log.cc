#include "common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace mtrap
{

namespace
{

LogLevel g_level = LogLevel::Normal;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        std::vector<char> buf(static_cast<size_t>(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
        out.assign(buf.data(), static_cast<size_t>(n));
    }
    va_end(ap2);
    return out;
}

} // namespace

void
setLogLevel(LogLevel lvl)
{
    g_level = lvl;
}

LogLevel
logLevel()
{
    return g_level;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (g_level == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace mtrap

#include "common/json.hh"

#include <cctype>
#include <cstdlib>

namespace mtrap
{

namespace
{

class JsonParser
{
  public:
    explicit JsonParser(const std::string &s) : s_(s) {}

    bool parse(JsonValue &out, std::string &err)
    {
        skipWs();
        if (!value(out, err))
            return false;
        skipWs();
        if (pos_ != s_.size()) {
            err = "trailing characters at offset "
                  + std::to_string(pos_);
            return false;
        }
        return true;
    }

  private:
    bool value(JsonValue &out, std::string &err)
    {
        if (pos_ >= s_.size()) {
            err = "unexpected end of input";
            return false;
        }
        switch (s_[pos_]) {
          case '{': return object(out, err);
          case '[': return array(out, err);
          case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.string, err);
          case 't':
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = s_[pos_] == 't';
            return literal(out.boolean ? "true" : "false", err);
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null", err);
          default:
            out.kind = JsonValue::Kind::Number;
            return number(out.number, err);
        }
    }

    bool object(JsonValue &out, std::string &err)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!string(key, err))
                return false;
            skipWs();
            if (peek() != ':') {
                err = "expected ':' at offset " + std::to_string(pos_);
                return false;
            }
            ++pos_;
            skipWs();
            JsonValue v;
            if (!value(v, err))
                return false;
            out.object.emplace(std::move(key), std::move(v));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            err = "expected ',' or '}' at offset " + std::to_string(pos_);
            return false;
        }
    }

    bool array(JsonValue &out, std::string &err)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue v;
            if (!value(v, err))
                return false;
            out.array.push_back(std::move(v));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            err = "expected ',' or ']' at offset " + std::to_string(pos_);
            return false;
        }
    }

    bool string(std::string &out, std::string &err)
    {
        if (peek() != '"') {
            err = "expected string at offset " + std::to_string(pos_);
            return false;
        }
        ++pos_;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_];
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size()) {
                    err = "unterminated escape";
                    return false;
                }
                switch (s_[pos_]) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case 'u':
                    // Our writers never emit \u; decode as '?' rather
                    // than failing on a hand-edited file.
                    if (pos_ + 4 >= s_.size()) {
                        err = "truncated \\u escape";
                        return false;
                    }
                    pos_ += 4;
                    c = '?';
                    break;
                  default:
                    err = "unknown escape";
                    return false;
                }
            }
            out.push_back(c);
            ++pos_;
        }
        if (pos_ >= s_.size()) {
            err = "unterminated string";
            return false;
        }
        ++pos_; // closing quote
        return true;
    }

    bool number(double &out, std::string &err)
    {
        const std::size_t start = pos_;
        while (pos_ < s_.size()
               && (std::isdigit(static_cast<unsigned char>(s_[pos_]))
                   || s_[pos_] == '.' || s_[pos_] == '-'
                   || s_[pos_] == '+' || s_[pos_] == 'e'
                   || s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start) {
            err = "expected number at offset " + std::to_string(start);
            return false;
        }
        const std::string tok = s_.substr(start, pos_ - start);
        char *end = nullptr;
        out = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0') {
            err = "bad number '" + tok + "'";
            return false;
        }
        return true;
    }

    bool literal(const char *lit, std::string &err)
    {
        const std::string l(lit);
        if (s_.compare(pos_, l.size(), l) != 0) {
            err = "expected '" + l + "' at offset "
                  + std::to_string(pos_);
            return false;
        }
        pos_ += l.size();
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
    void skipWs()
    {
        while (pos_ < s_.size()
               && std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &err)
{
    JsonParser parser(text);
    return parser.parse(out, err);
}

double
jsonNumberField(const JsonValue &v, const std::string &key,
                double fallback)
{
    const JsonValue *f = v.field(key);
    return f && f->kind == JsonValue::Kind::Number ? f->number : fallback;
}

} // namespace mtrap


/**
 * @file
 * Interval-sampled stat time-series: every N committed instructions the
 * runner snapshots the live StatSheet tree into one delta-encoded row,
 * turning the end-of-run aggregates into per-interval IPC, miss rates,
 * filter-flush counts and per-core utilisation.
 *
 * PR 5's interned stat schema makes this cheap: at construction the
 * series walks the tree once, keeps a direct word pointer per Counter
 * (the sheets are inline and stable for the System's lifetime), and
 * each sample() is then a single pass of loads and subtractions — no
 * name materialisation, no allocation beyond the appended row.
 *
 * Only Counter-kind stats are captured: they are monotonic within a
 * measured phase, so interval deltas are well defined and sum exactly
 * to the end-of-run aggregate (the property the tests pin). Averages,
 * histograms and formulas are derivable offline from counter columns.
 */

#ifndef MTRAP_TRACE_STATS_SERIES_HH
#define MTRAP_TRACE_STATS_SERIES_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace mtrap
{

/** Delta-encoded per-interval snapshot of every Counter in a tree. */
class StatSeries
{
  public:
    /** One sampled interval. */
    struct Row
    {
        /** Makespan clock at the sample point. */
        Cycle cycle = 0;
        /** Committed-instruction odometer at the sample point (the
         *  runner's run-budget units). */
        std::uint64_t instructions = 0;
        /** Per-column increments since the previous row. */
        std::vector<std::uint64_t> delta;
    };

    /**
     * Capture the column set (every Counter reachable from `root`, in
     * visit order) and the baseline values. Construct *after*
     * System::resetStats so interval deltas sum to the final
     * aggregates.
     */
    StatSeries(const StatGroup &root, std::uint64_t interval_instructions,
               Cycle start_cycle = 0);

    /** Append one row covering everything since the last sample. */
    void sample(Cycle now, std::uint64_t instructions_done);

    std::uint64_t interval() const { return interval_; }
    const std::vector<std::string> &columns() const { return columns_; }
    const std::vector<Row> &rows() const { return rows_; }

    /** Column index of `path`, or -1. */
    int columnIndex(const std::string &path) const;

    /** Sum of a column over all rows (== final aggregate - baseline). */
    std::uint64_t columnTotal(std::size_t col) const;

    /**
     * CSV: `cycle,instructions,ipc,<column>...` — one row per interval.
     * `ipc` is committed instructions per makespan cycle within the
     * interval, derived from the per-core `committed` columns.
     */
    void writeCsv(std::ostream &os) const;

    /** Interval IPC of `row` (see writeCsv). */
    double intervalIpc(std::size_t row) const;

  private:
    std::uint64_t interval_ = 0;
    std::vector<std::string> columns_;
    /** Live word pointer per column (stable: sheets are inline). */
    std::vector<const std::uint64_t *> words_;
    /** Value at the previous sample (baseline for the next delta). */
    std::vector<std::uint64_t> prev_;
    /** Columns named "*.committed" (per-core commit counters). */
    std::vector<std::size_t> committedCols_;
    std::vector<Row> rows_;
    Cycle prevCycle_ = 0;
};

} // namespace mtrap

#endif // MTRAP_TRACE_STATS_SERIES_HH

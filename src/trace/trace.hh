/**
 * @file
 * Cycle-accurate event tracing: fixed-size binary ring buffers of
 * cycle-stamped simulation events, fed by near-zero-cost hooks in the
 * core, scheduler, MuonTrap controller, InvisiSpec buffer and the
 * coherence bus.
 *
 * Design constraints, in order:
 *  - Off by default and free when off: every hook is a single
 *    `if (tracer_)` branch on a pointer that is null unless a run
 *    explicitly attached a Tracer (RunOptions::trace / mtrap_sim
 *    --trace). No tracer, no work, no stats, no output changes.
 *  - Deterministic: events are stamped with simulated cycles only —
 *    never wall clock — so the same seed produces a byte-identical
 *    trace file, across runs and across harness thread counts.
 *  - Bounded: each buffer is a power-of-two ring with a drop-oldest
 *    overflow policy; drops are counted in the `trace.dropped` stat so
 *    a truncated trace is detectable, never silent.
 *
 * Event streams: one ring per core (events stamped by that core's
 * monotonic front-end clock), plus one shared ring for scheduler
 * decisions. The scheduler ring is separate because the global decision
 * sequence is *not* cycle-monotonic across cores (a parked core can
 * record a decision at an older cycle than later decisions of other
 * cores), and the legacy --sched-trace CSV must reproduce exactly that
 * decision order, byte for byte.
 *
 * Exporters (Chrome trace-event JSON, CSV) live in chrome_trace.hh.
 */

#ifndef MTRAP_TRACE_TRACE_HH
#define MTRAP_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace mtrap
{

class Serializer;
class Deserializer;

/** What happened (TraceEvent::kind). */
enum class TraceEventKind : std::uint8_t
{
    /** Scheduler decision: run job arg0, thread arg1 (sched ring). */
    SchedRun,
    /** Scheduler decision: idle gang-padding hole (sched ring). */
    SchedIdle,
    /** Scheduler decision: queue ran dry, core parked (sched ring). */
    SchedPark,
    /** Load balancer moved job arg0 here from core arg1 (sched ring). */
    SchedMigrate,
    /** Core switched address spaces; arg0 = incoming asid, arg1 =
     *  outgoing asid. */
    ContextSwitch,
    /** Pipeline squash; arg0 = correct-path pc. */
    Squash,
    /** MuonTrap filter flash-clear actually performed; arg0 =
     *  FlushReason ordinal. */
    FilterFlush,
    /** InvisiSpec speculative buffer cleared; arg0 = entries dropped. */
    SpecClear,
    /** Bus request missed L2 and went to DRAM; arg0 = paddr. */
    L2Miss,
    /** Bus NACKed a speculative request (MuonTrap coherency rules);
     *  arg0 = paddr. */
    BusNack,
    /** Open-system arrival: job arg0 admitted mid-run; the event is
     *  stamped with the arrival cycle (sched ring). */
    SchedArrive,
    /** Open-system completion: job arg0 finished its service demand
     *  (natural halt or service-limit exhaustion); arg1 = thread
     *  (sched ring). */
    SchedComplete,
};

/** Printable lower-case kind name (CSV column / JSON event name). */
const char *traceEventKindName(TraceEventKind kind);

/** One cycle-stamped event. POD, 24 bytes, memcpy-able. */
struct TraceEvent
{
    Cycle when = 0;
    std::uint64_t arg0 = 0;
    std::uint32_t arg1 = 0;
    std::uint16_t core = 0;
    TraceEventKind kind = TraceEventKind::SchedRun;
    std::uint8_t pad = 0;
};

/** Tracer sizing knobs. */
struct TraceParams
{
    /** Capacity of each ring (per-core and scheduler), rounded up to a
     *  power of two. Default comfortably holds every event of the
     *  bundled run lengths; longer runs drop oldest (counted). */
    std::size_t bufferEntries = std::size_t{1} << 16;
};

/**
 * Fixed-capacity power-of-two ring of TraceEvents with drop-oldest
 * overflow. Timestamps are clamped monotonic per buffer (insurance:
 * every producer already stamps with a monotonic per-core clock).
 */
class TraceBuffer
{
  public:
    /** `clamp_monotonic` is off for the scheduler ring: its events come
     *  from different cores' clocks, and the legacy CSV must reproduce
     *  the (non-monotonic) decision-order cycles exactly. */
    explicit TraceBuffer(std::size_t entries,
                         bool clamp_monotonic = true);

    /** Append; drops the oldest event when full. @return true when an
     *  event was dropped to make room. */
    bool push(const TraceEvent &e);

    std::size_t size() const { return count_; }
    std::size_t capacity() const { return ring_.size(); }

    /** Buffered events, oldest first. */
    std::vector<TraceEvent> ordered() const;

    /** Checkpoint the buffered events (ring renormalised to slot 0;
     *  only logical content and the monotonic clamp survive). */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    std::vector<TraceEvent> ring_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0; ///< next write slot
    std::size_t count_ = 0;
    bool clamp_ = true;
    Cycle lastWhen_ = 0;
};

/**
 * The per-run event sink: one ring per core plus the shared scheduler
 * ring, with recorded/dropped telemetry. Attached to a System (or
 * privately to a Scheduler for legacy --sched-trace runs) for the
 * run's lifetime; components hold a raw pointer and test it on every
 * hook.
 */
class Tracer
{
  public:
    /** `parent` may be null: a detached tracer keeps its stats out of
     *  the system tree (the legacy sched-trace path must not change
     *  stat dumps). */
    Tracer(unsigned cores, const TraceParams &params, StatGroup *parent);

    unsigned cores() const { return static_cast<unsigned>(perCore_.size()); }

    /** Record into `core`'s ring. */
    void record(CoreId core, TraceEventKind kind, Cycle when,
                std::uint64_t arg0 = 0, std::uint32_t arg1 = 0);

    /** Record into the shared scheduler ring (global decision order). */
    void recordSched(CoreId core, TraceEventKind kind, Cycle when,
                     std::uint64_t arg0 = 0, std::uint32_t arg1 = 0);

    const TraceBuffer &coreBuffer(CoreId core) const
    {
        return perCore_.at(core);
    }
    const TraceBuffer &schedBuffer() const { return sched_; }

    /** Human-readable job name for scheduler spans (Chrome export);
     *  falls back to "job<id>" when unset. */
    void setJobLabel(unsigned job, const std::string &name);
    std::string jobLabel(unsigned job) const;

    std::uint64_t recordedCount() const { return recorded.value(); }
    std::uint64_t droppedCount() const { return dropped.value(); }

    /** Checkpoint every ring plus the job labels. Warmup-phase events
     *  live in the rings, so a restored traced run must carry them to
     *  reproduce the monolithic run's trace files byte for byte. */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    std::vector<TraceBuffer> perCore_;
    TraceBuffer sched_;
    std::vector<std::string> jobLabels_;

    StatGroup stats_;

  public:
    Counter recorded;
    Counter dropped;
};

} // namespace mtrap

#endif // MTRAP_TRACE_TRACE_HH

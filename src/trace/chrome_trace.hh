/**
 * @file
 * Trace exporters and the matching schema validator.
 *
 * writeChromeTrace emits the Chrome trace-event JSON format (loadable
 * in Perfetto or chrome://tracing): scheduler slots become "X"
 * (complete) span events on one track per core, instantaneous events
 * ("i") mark context switches / squashes / filter flushes / spec-buffer
 * clears / L2 misses / bus NACKs on the same tracks, and an optional
 * StatSeries contributes "C" (counter) events with per-interval IPC.
 * Timestamps are simulated cycles (ts unit is nominally µs — Perfetto
 * renders the numbers verbatim), so the file is deterministic: same
 * seed, same bytes.
 *
 * validateChromeTrace is the schema gate CI runs on a freshly produced
 * trace: well-formed JSON, a traceEvents array, required fields per
 * event, and non-decreasing timestamps within each (pid, tid) track.
 */

#ifndef MTRAP_TRACE_CHROME_TRACE_HH
#define MTRAP_TRACE_CHROME_TRACE_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace mtrap
{

class StatSeries;

/** Emit Chrome trace-event JSON for everything `tracer` captured;
 *  `series` (optional) adds per-interval counter tracks. */
void writeChromeTrace(const Tracer &tracer, const StatSeries *series,
                      std::ostream &os);

/** Flat CSV of every captured event (merged, cycle-ordered):
 *  `cycle,core,kind,arg0,arg1`. */
void writeTraceCsv(const Tracer &tracer, std::ostream &os);

/**
 * Validate Chrome trace-event JSON text. Returns true when `text` is a
 * JSON object whose "traceEvents" array entries carry the required
 * fields (name/ph strings; pid/tid/ts numbers on non-metadata events)
 * and every (pid, tid) track's timestamps are non-decreasing. On
 * failure `err` names the first violation.
 */
bool validateChromeTrace(const std::string &text, std::string &err);

} // namespace mtrap

#endif // MTRAP_TRACE_CHROME_TRACE_HH

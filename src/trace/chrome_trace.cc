#include "trace/chrome_trace.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "trace/stats_series.hh"

namespace mtrap
{

namespace
{

/** Escape a string for inclusion in a JSON string literal. */
std::string
jsonEscaped(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default: out.push_back(c);
        }
    }
    return out;
}

/** One rendered trace-event JSON object with its track sort key. */
struct Emitted
{
    std::uint64_t pid = 0;
    std::uint64_t tid = 0;
    Cycle ts = 0;
    std::string json;
};

std::string
u64(std::uint64_t v)
{
    return std::to_string(v);
}

Emitted
spanEvent(CoreId core, Cycle start, Cycle end, const std::string &name,
          int job, int thread)
{
    Emitted e;
    e.tid = core;
    e.ts = start;
    e.json = "{\"name\":\"" + jsonEscaped(name)
             + "\",\"ph\":\"X\",\"pid\":0,\"tid\":" + u64(core)
             + ",\"ts\":" + u64(start)
             + ",\"dur\":" + u64(end > start ? end - start : 0);
    if (job >= 0)
        e.json += ",\"args\":{\"job\":" + std::to_string(job)
                  + ",\"thread\":" + std::to_string(thread) + "}";
    e.json += "}";
    return e;
}

Emitted
instantEvent(const TraceEvent &ev)
{
    Emitted e;
    e.tid = ev.core;
    e.ts = ev.when;
    e.json = std::string("{\"name\":\"") + traceEventKindName(ev.kind)
             + "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":"
             + u64(ev.core) + ",\"ts\":" + u64(ev.when)
             + ",\"args\":{\"a0\":" + u64(ev.arg0) + ",\"a1\":"
             + u64(ev.arg1) + "}}";
    return e;
}

/** Latest timestamp across every buffer: the close point for spans
 *  still open when the run ended. */
Cycle
traceEndCycle(const Tracer &t)
{
    Cycle end = 0;
    for (const TraceEvent &e : t.schedBuffer().ordered())
        end = std::max(end, e.when);
    for (unsigned c = 0; c < t.cores(); ++c)
        for (const TraceEvent &e : t.coreBuffer(c).ordered())
            end = std::max(end, e.when);
    return end;
}

} // namespace

void
writeChromeTrace(const Tracer &tracer, const StatSeries *series,
                 std::ostream &os)
{
    std::vector<Emitted> events;

    // Scheduler decisions become per-core occupancy spans: each
    // decision opens a slot that runs until the core's next decision
    // (or the end of the trace).
    const Cycle trace_end = traceEndCycle(tracer);
    struct Open
    {
        bool active = false;
        Cycle start = 0;
        std::string name;
        int job = -1, thread = -1;
    };
    std::vector<Open> open(tracer.cores());
    for (const TraceEvent &e : tracer.schedBuffer().ordered()) {
        // Migrations, arrivals and completions are point events, not
        // occupancy decisions: render as instants so they don't break
        // the span state machine below.
        if (e.kind == TraceEventKind::SchedMigrate
            || e.kind == TraceEventKind::SchedArrive
            || e.kind == TraceEventKind::SchedComplete) {
            events.push_back(instantEvent(e));
            continue;
        }
        Open &o = open.at(e.core);
        if (o.active)
            events.push_back(spanEvent(e.core, o.start, e.when, o.name,
                                       o.job, o.thread));
        o.active = true;
        o.start = e.when;
        if (e.kind == TraceEventKind::SchedRun) {
            const int job = static_cast<int>(
                static_cast<std::int64_t>(e.arg0));
            o.job = job;
            o.thread = static_cast<int>(e.arg1);
            o.name = tracer.jobLabel(static_cast<unsigned>(job));
            if (e.arg1)
                o.name += ".t" + std::to_string(e.arg1);
        } else {
            o.job = -1;
            o.thread = -1;
            o.name = e.kind == TraceEventKind::SchedIdle ? "idle"
                                                         : "parked";
        }
    }
    for (unsigned c = 0; c < tracer.cores(); ++c)
        if (open[c].active)
            events.push_back(spanEvent(c, open[c].start, trace_end,
                                       open[c].name, open[c].job,
                                       open[c].thread));

    // Core-local events as thread-scoped instants.
    for (unsigned c = 0; c < tracer.cores(); ++c)
        for (const TraceEvent &e : tracer.coreBuffer(c).ordered())
            events.push_back(instantEvent(e));

    // Interval IPC as a counter track.
    if (series) {
        const auto &rows = series->rows();
        for (std::size_t i = 0; i < rows.size(); ++i) {
            char val[32];
            std::snprintf(val, sizeof val, "%.6f",
                          series->intervalIpc(i));
            Emitted e;
            e.tid = 0;
            e.ts = rows[i].cycle;
            e.json = "{\"name\":\"ipc\",\"ph\":\"C\",\"pid\":0,\"tid\":0"
                     ",\"ts\":" + u64(rows[i].cycle)
                     + ",\"args\":{\"ipc\":" + val + "}}";
            events.push_back(std::move(e));
        }
    }

    // Each track must be timestamp-sorted (the validator's contract);
    // a stable sort keeps same-cycle events in their deterministic
    // production order.
    std::stable_sort(events.begin(), events.end(),
                     [](const Emitted &a, const Emitted &b) {
                         if (a.pid != b.pid)
                             return a.pid < b.pid;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         return a.ts < b.ts;
                     });

    os << "{\"traceEvents\":[\n";
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"args\":{\"name\":\"mtrap\"}}";
    for (unsigned c = 0; c < tracer.cores(); ++c)
        os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
              "\"tid\":"
           << c << ",\"args\":{\"name\":\"core" << c << "\"}}";
    for (const Emitted &e : events)
        os << ",\n" << e.json;
    os << "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{"
          "\"recorded\":"
       << tracer.recordedCount() << ",\"dropped\":"
       << tracer.droppedCount() << "}}\n";
}

void
writeTraceCsv(const Tracer &tracer, std::ostream &os)
{
    std::vector<TraceEvent> all = tracer.schedBuffer().ordered();
    for (unsigned c = 0; c < tracer.cores(); ++c) {
        const std::vector<TraceEvent> evs =
            tracer.coreBuffer(c).ordered();
        all.insert(all.end(), evs.begin(), evs.end());
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.when != b.when)
                             return a.when < b.when;
                         return a.core < b.core;
                     });

    os << "cycle,core,kind,arg0,arg1\n";
    for (const TraceEvent &e : all)
        os << e.when << "," << e.core << ","
           << traceEventKindName(e.kind) << "," << e.arg0 << ","
           << e.arg1 << "\n";
}

bool
validateChromeTrace(const std::string &text, std::string &err)
{
    JsonValue root;
    if (!parseJson(text, root, err))
        return false;
    if (root.kind != JsonValue::Kind::Object) {
        err = "top level is not an object";
        return false;
    }
    const JsonValue *events = root.field("traceEvents");
    if (!events || events->kind != JsonValue::Kind::Array) {
        err = "missing \"traceEvents\" array";
        return false;
    }

    std::map<std::pair<double, double>, double> lastTs;
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &e = events->array[i];
        const std::string at = "traceEvents[" + std::to_string(i) + "]";
        if (e.kind != JsonValue::Kind::Object) {
            err = at + " is not an object";
            return false;
        }
        const JsonValue *name = e.field("name");
        if (!name || name->kind != JsonValue::Kind::String) {
            err = at + " has no \"name\" string";
            return false;
        }
        const JsonValue *ph = e.field("ph");
        if (!ph || ph->kind != JsonValue::Kind::String
            || ph->string.empty()) {
            err = at + " has no \"ph\" string";
            return false;
        }
        if (ph->string == "M")
            continue; // metadata carries no timestamp

        const JsonValue *pid = e.field("pid");
        const JsonValue *tid = e.field("tid");
        const JsonValue *ts = e.field("ts");
        if (!pid || pid->kind != JsonValue::Kind::Number
            || !tid || tid->kind != JsonValue::Kind::Number
            || !ts || ts->kind != JsonValue::Kind::Number) {
            err = at + " (" + name->string
                  + ") lacks numeric pid/tid/ts";
            return false;
        }
        if (ph->string == "X") {
            const JsonValue *dur = e.field("dur");
            if (!dur || dur->kind != JsonValue::Kind::Number
                || dur->number < 0) {
                err = at + " (" + name->string
                      + ") \"X\" event lacks a non-negative dur";
                return false;
            }
        }
        const auto track = std::make_pair(pid->number, tid->number);
        const auto it = lastTs.find(track);
        if (it != lastTs.end() && ts->number < it->second) {
            err = at + " (" + name->string
                  + ") goes backwards on its track: ts "
                  + std::to_string(ts->number) + " after "
                  + std::to_string(it->second);
            return false;
        }
        lastTs[track] = ts->number;
    }
    return true;
}

} // namespace mtrap

#include "trace/trace.hh"

#include <algorithm>

#include "common/log.hh"
#include "snapshot/snapshot.hh"

namespace mtrap
{

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::SchedRun: return "sched_run";
      case TraceEventKind::SchedIdle: return "sched_idle";
      case TraceEventKind::SchedPark: return "sched_park";
      case TraceEventKind::SchedMigrate: return "sched_migrate";
      case TraceEventKind::ContextSwitch: return "ctx_switch";
      case TraceEventKind::Squash: return "squash";
      case TraceEventKind::FilterFlush: return "filter_flush";
      case TraceEventKind::SpecClear: return "spec_clear";
      case TraceEventKind::L2Miss: return "l2_miss";
      case TraceEventKind::BusNack: return "bus_nack";
      case TraceEventKind::SchedArrive: return "sched_arrive";
      case TraceEventKind::SchedComplete: return "sched_complete";
    }
    return "?";
}

namespace
{

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

TraceBuffer::TraceBuffer(std::size_t entries, bool clamp_monotonic)
    : clamp_(clamp_monotonic)
{
    if (entries == 0)
        fatal("trace buffer: zero entries");
    ring_.resize(roundUpPow2(entries));
    mask_ = ring_.size() - 1;
}

bool
TraceBuffer::push(const TraceEvent &e)
{
    TraceEvent ev = e;
    if (clamp_) {
        ev.when = std::max(ev.when, lastWhen_);
        lastWhen_ = ev.when;
    }

    ring_[head_] = ev;
    head_ = (head_ + 1) & mask_;
    if (count_ < ring_.size()) {
        ++count_;
        return false;
    }
    return true; // overwrote the oldest entry
}

std::vector<TraceEvent>
TraceBuffer::ordered() const
{
    std::vector<TraceEvent> out;
    out.reserve(count_);
    const std::size_t start = (head_ + ring_.size() - count_) & mask_;
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(start + i) & mask_]);
    return out;
}

void
TraceBuffer::saveState(Serializer &s) const
{
    s.u64(count_);
    s.u64(lastWhen_);
    const std::size_t start = (head_ + ring_.size() - count_) & mask_;
    for (std::size_t i = 0; i < count_; ++i)
        s.raw(&ring_[(start + i) & mask_], sizeof(TraceEvent));
}

void
TraceBuffer::restoreState(Deserializer &d)
{
    const std::uint64_t n = d.u64();
    if (n > ring_.size())
        throw SnapshotError("trace ring occupancy exceeds capacity");
    lastWhen_ = d.u64();
    count_ = static_cast<std::size_t>(n);
    for (std::size_t i = 0; i < count_; ++i)
        d.raw(&ring_[i], sizeof(TraceEvent));
    head_ = count_ & mask_;
}

Tracer::Tracer(unsigned cores, const TraceParams &params, StatGroup *parent)
    : sched_(params.bufferEntries, /*clamp_monotonic=*/false),
      stats_("trace", parent),
      recorded(&stats_, "recorded", "trace events recorded"),
      dropped(&stats_, "dropped",
              "trace events dropped to ring-buffer overflow (oldest "
              "first)")
{
    if (cores == 0)
        fatal("tracer: no cores");
    perCore_.reserve(cores);
    for (unsigned c = 0; c < cores; ++c)
        perCore_.emplace_back(params.bufferEntries);
}

void
Tracer::record(CoreId core, TraceEventKind kind, Cycle when,
               std::uint64_t arg0, std::uint32_t arg1)
{
    TraceEvent e;
    e.when = when;
    e.arg0 = arg0;
    e.arg1 = arg1;
    e.core = static_cast<std::uint16_t>(core);
    e.kind = kind;
    ++recorded;
    if (perCore_.at(core).push(e))
        ++dropped;
}

void
Tracer::recordSched(CoreId core, TraceEventKind kind, Cycle when,
                    std::uint64_t arg0, std::uint32_t arg1)
{
    TraceEvent e;
    e.when = when;
    e.arg0 = arg0;
    e.arg1 = arg1;
    e.core = static_cast<std::uint16_t>(core);
    e.kind = kind;
    ++recorded;
    if (sched_.push(e))
        ++dropped;
}

void
Tracer::saveState(Serializer &s) const
{
    for (const TraceBuffer &b : perCore_)
        b.saveState(s);
    sched_.saveState(s);
    s.u64(jobLabels_.size());
    for (const std::string &l : jobLabels_)
        s.str(l);
}

void
Tracer::restoreState(Deserializer &d)
{
    for (TraceBuffer &b : perCore_)
        b.restoreState(d);
    sched_.restoreState(d);
    const std::uint64_t n = d.u64();
    d.checkCount(n, 1);
    jobLabels_.assign(static_cast<std::size_t>(n), std::string());
    for (std::string &l : jobLabels_)
        l = d.str();
}

void
Tracer::setJobLabel(unsigned job, const std::string &name)
{
    if (jobLabels_.size() <= job)
        jobLabels_.resize(job + 1);
    jobLabels_[job] = name;
}

std::string
Tracer::jobLabel(unsigned job) const
{
    if (job < jobLabels_.size() && !jobLabels_[job].empty())
        return jobLabels_[job];
    return "job" + std::to_string(job);
}

} // namespace mtrap

#include "trace/stats_series.hh"

#include <cstdio>
#include <ostream>

#include "common/log.hh"

namespace mtrap
{

StatSeries::StatSeries(const StatGroup &root,
                       std::uint64_t interval_instructions,
                       Cycle start_cycle)
    : interval_(interval_instructions), prevCycle_(start_cycle)
{
    if (interval_ == 0)
        fatal("stat series: zero interval");

    root.visit([this](const std::string &path, const StatView &stat) {
        if (stat.kind() != StatKind::Counter)
            return;
        const std::uint64_t *w = stat.words();
        if (!w)
            return;
        const bool committed =
            path.size() > 10
            && path.compare(path.size() - 10, 10, ".committed") == 0;
        if (committed)
            committedCols_.push_back(columns_.size());
        columns_.push_back(path);
        words_.push_back(w);
        prev_.push_back(*w);
    });
}

void
StatSeries::sample(Cycle now, std::uint64_t instructions_done)
{
    Row row;
    row.cycle = now;
    row.instructions = instructions_done;
    row.delta.resize(words_.size());
    for (std::size_t i = 0; i < words_.size(); ++i) {
        const std::uint64_t v = *words_[i];
        row.delta[i] = v - prev_[i];
        prev_[i] = v;
    }
    rows_.push_back(std::move(row));
}

int
StatSeries::columnIndex(const std::string &path) const
{
    for (std::size_t i = 0; i < columns_.size(); ++i)
        if (columns_[i] == path)
            return static_cast<int>(i);
    return -1;
}

std::uint64_t
StatSeries::columnTotal(std::size_t col) const
{
    std::uint64_t sum = 0;
    for (const Row &r : rows_)
        sum += r.delta.at(col);
    return sum;
}

double
StatSeries::intervalIpc(std::size_t row) const
{
    const Row &r = rows_.at(row);
    const Cycle prev = row ? rows_[row - 1].cycle : prevCycle_;
    const Cycle dc = r.cycle > prev ? r.cycle - prev : 1;
    std::uint64_t insts = 0;
    for (std::size_t c : committedCols_)
        insts += r.delta[c];
    return static_cast<double>(insts) / static_cast<double>(dc);
}

void
StatSeries::writeCsv(std::ostream &os) const
{
    os << "cycle,instructions,ipc";
    for (const std::string &c : columns_)
        os << "," << c;
    os << "\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        const Row &r = rows_[i];
        os << r.cycle << "," << r.instructions;
        // Fixed precision: the CSV must be byte-stable run to run.
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6f", intervalIpc(i));
        os << "," << buf;
        for (std::uint64_t d : r.delta)
            os << "," << d;
        os << "\n";
    }
}

} // namespace mtrap

#include "prefetch/commit_channel.hh"

#include "prefetch/stride_prefetcher.hh"
#include "snapshot/snapshot.hh"

namespace mtrap
{

namespace
{

StatSchema &
commitChannelStatSchema()
{
    static StatSchema s("pf_commit_channel");
    return s;
}

} // namespace

PrefetchCommitChannel::PrefetchCommitChannel(
        StridePrefetcher *l2_prefetcher, StatGroup *parent)
    : l2Prefetcher_(l2_prefetcher),
      stats_(commitChannelStatSchema(), "pf_commit_channel", parent),
      notified(&stats_, "notified", "commit notifications received"),
      filteredNoPrefetcher(&stats_, "filtered",
                           "notifications dropped (level has no "
                           "prefetcher)"),
      delivered(&stats_, "delivered", "notifications delivered to the "
                                      "L2 prefetcher")
{
}

void
PrefetchCommitChannel::notifyCommit(const PrefetchNotify &n)
{
    ++notified;
    // Only the L2 (and memory-side fills, which train the L2 prefetcher
    // too since the L2 is where the prefetched data lands) are backed by
    // a prefetcher in the Table-1 configuration.
    if (n.fillLevel < 2 || !l2Prefetcher_) {
        ++filteredNoPrefetcher;
        return;
    }
    queue_.push_back(n);
}

void
PrefetchCommitChannel::saveState(Serializer &s) const
{
    s.u64(queue_.size());
    for (const PrefetchNotify &n : queue_) {
        s.u64(n.pc);
        s.u64(n.paddr);
        s.u8(n.fillLevel);
    }
}

void
PrefetchCommitChannel::restoreState(Deserializer &d)
{
    queue_.clear();
    const std::uint64_t n = d.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        PrefetchNotify pn;
        pn.pc = d.u64();
        pn.paddr = d.u64();
        pn.fillLevel = d.u8();
        queue_.push_back(pn);
    }
}

void
PrefetchCommitChannel::drain()
{
    while (!queue_.empty()) {
        const PrefetchNotify n = queue_.front();
        queue_.pop_front();
        l2Prefetcher_->train(n.pc, n.paddr);
        ++delivered;
    }
}

} // namespace mtrap

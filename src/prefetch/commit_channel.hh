/**
 * @file
 * Prefetch commit channel (paper §4.6 and figure 1).
 *
 * Under MuonTrap the prefetcher may only observe the *committed*
 * instruction stream. When a filter-cache line transitions from
 * uncommitted to committed, a notification tagged with the hierarchy
 * level the line was filled from is enqueued here; the channel forwards
 * it to the prefetcher of that level (only the L2 has one in the Table-1
 * system), preserving program order.
 */

#ifndef MTRAP_PREFETCH_COMMIT_CHANNEL_HH
#define MTRAP_PREFETCH_COMMIT_CHANNEL_HH

#include <deque>

#include "common/stats.hh"
#include "common/types.hh"

namespace mtrap
{

class StridePrefetcher;
class Serializer;
class Deserializer;

/** One commit-time prefetcher notification. */
struct PrefetchNotify
{
    Addr pc = kAddrInvalid;
    Addr paddr = kAddrInvalid;
    /** Level the line was originally filled from (1=L1, 2=L2, 3=mem). */
    std::uint8_t fillLevel = 0;
};

/**
 * Ordered queue of commit-time training events, drained into the L2
 * prefetcher. Notifications are only generated for levels that actually
 * have a prefetcher (§4.6: "provided it has a prefetcher, to avoid
 * triggering unnecessary prefetches").
 */
class PrefetchCommitChannel
{
  public:
    PrefetchCommitChannel(StridePrefetcher *l2_prefetcher,
                          StatGroup *parent);

    /**
     * A filter line just committed; notify the prefetcher of the level
     * it was brought in from. Fill levels without a prefetcher (L1) are
     * filtered out.
     */
    void notifyCommit(const PrefetchNotify &n);

    /** Drain all queued notifications into the prefetcher (called once
     *  per commit group; ordering is program order). */
    void drain();

    std::size_t pending() const { return queue_.size(); }

    /** Checkpoint the pending notification queue. */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    StridePrefetcher *l2Prefetcher_;
    std::deque<PrefetchNotify> queue_;

    StatGroup stats_;

  public:
    Counter notified;
    Counter filteredNoPrefetcher;
    Counter delivered;
};

} // namespace mtrap

#endif // MTRAP_PREFETCH_COMMIT_CHANNEL_HH

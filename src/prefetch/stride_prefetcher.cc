#include "prefetch/stride_prefetcher.hh"

#include "coherence/bus.hh"
#include "common/log.hh"
#include "snapshot/snapshot.hh"

namespace mtrap
{

namespace
{

StatSchema &
prefetcherStatSchema()
{
    static StatSchema s("prefetcher");
    return s;
}

} // namespace

StridePrefetcher::StridePrefetcher(const PrefetcherParams &params,
                                   CoherenceBus *bus, StatGroup *parent)
    : params_(params), bus_(bus),
      table_(params.tableEntries),
      stats_(prefetcherStatSchema(), "prefetcher", parent),
      trains(&stats_, "trains", "training events observed"),
      issued(&stats_, "issued", "prefetch fills issued"),
      usefulFills(&stats_, "useful_fills",
                  "prefetch fills that actually installed a line")
{
    if (params.tableEntries == 0)
        fatal("prefetcher: tableEntries must be nonzero");
}

StridePrefetcher::Entry &
StridePrefetcher::entryFor(Addr pc)
{
    return table_[pc % table_.size()];
}

void
StridePrefetcher::train(Addr pc, Addr paddr)
{
    ++trains;
    const Addr line = lineNum(paddr);
    Entry &e = entryFor(pc);

    if (e.pc != pc) {
        e.pc = pc;
        e.lastLine = line;
        e.stride = 0;
        e.confidence = 0;
        return;
    }

    const std::int64_t stride = static_cast<std::int64_t>(line)
                                - static_cast<std::int64_t>(e.lastLine);
    e.lastLine = line;
    if (stride == 0)
        return;

    if (stride == e.stride) {
        if (e.confidence < params_.confidenceMax)
            ++e.confidence;
    } else {
        e.stride = stride;
        e.confidence = 1;
        return;
    }

    if (e.confidence < params_.confidenceThreshold)
        return;

    for (unsigned d = 1; d <= params_.degree; ++d) {
        const std::int64_t target =
            static_cast<std::int64_t>(line) + e.stride * d;
        if (target < 0)
            continue;
        const Addr pf = static_cast<Addr>(target) << kLineShift;
        ++issued;
        if (bus_ && bus_->prefetchFill(pf))
            ++usefulFills;
    }
}

void
StridePrefetcher::reset()
{
    for (auto &e : table_)
        e = Entry{};
}

void
StridePrefetcher::saveState(Serializer &s) const
{
    s.u64(table_.size());
    for (const Entry &e : table_) {
        s.u64(e.pc);
        s.u64(e.lastLine);
        s.i64(e.stride);
        s.u32(e.confidence);
    }
}

void
StridePrefetcher::restoreState(Deserializer &d)
{
    if (d.u64() != table_.size())
        throw SnapshotError("prefetcher table size mismatch");
    for (Entry &e : table_) {
        e.pc = d.u64();
        e.lastLine = d.u64();
        e.stride = d.i64();
        e.confidence = d.u32();
    }
}

} // namespace mtrap

/**
 * @file
 * PC-indexed stride prefetcher attached to the shared L2 (Table 1).
 *
 * In an unprotected system the prefetcher trains on every access as it
 * executes — including speculative, wrong-path ones, which is the leak
 * exploited by the paper's attack 5. Under MuonTrap, training events
 * arrive only through the PrefetchCommitChannel, in commit order.
 */

#ifndef MTRAP_PREFETCH_STRIDE_PREFETCHER_HH
#define MTRAP_PREFETCH_STRIDE_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace mtrap
{

class CoherenceBus;
class Serializer;
class Deserializer;

/** Stride-prefetcher configuration. */
struct PrefetcherParams
{
    /** Entries in the PC-indexed stride table. */
    unsigned tableEntries = 64;
    /** Confidence needed before prefetches are issued. */
    unsigned confidenceThreshold = 2;
    /** Saturating confidence ceiling. */
    unsigned confidenceMax = 4;
    /** Prefetch distance (lines ahead of the trained stride; gem5's
     *  stride prefetcher runs several lines deep). */
    unsigned degree = 4;
};

/**
 * Classic per-PC stride detector. `train()` observes a (pc, line
 * address) pair and may issue prefetch fills through the bus.
 */
class StridePrefetcher
{
  public:
    StridePrefetcher(const PrefetcherParams &params, CoherenceBus *bus,
                     StatGroup *parent);

    /** Observe one demand access and possibly issue prefetches. */
    void train(Addr pc, Addr paddr);

    /** Drop all training state (context-switch hygiene in tests). */
    void reset();

    /** Checkpoint the stride table. */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

    const PrefetcherParams &params() const { return params_; }

  private:
    struct Entry
    {
        Addr pc = kAddrInvalid;
        Addr lastLine = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
    };

    Entry &entryFor(Addr pc);

    PrefetcherParams params_;
    CoherenceBus *bus_;
    std::vector<Entry> table_;

    StatGroup stats_;

  public:
    Counter trains;
    Counter issued;
    Counter usefulFills;
};

} // namespace mtrap

#endif // MTRAP_PREFETCH_STRIDE_PREFETCHER_HH
